"""The distributed data tier's runtime: tables, caches, sagas, dedup.

:class:`DistribRuntime` is the bundle the concurrency runtime mounts
when constructed with ``ConcurrencyRuntime(distrib=DistribConfig(...))``:

* lazily-created named :class:`~repro.distrib.replication.ReplicatedTable`\\ s
  sharing one :class:`~repro.distrib.replication.PartitionMap`;
* :class:`~repro.distrib.cache.TieredCache` instances (plus the
  location/property adapters the runtime swaps in for its single-node
  caches);
* one :class:`~repro.distrib.idempotency.IdempotencyStore` attached to
  the fleet's substrate write sites;
* one :class:`~repro.distrib.saga.SagaOrchestrator`;
* the gossip driver — :meth:`tick` registers as a
  ``CooperativeScheduler`` drain hook and runs an anti-entropy sweep
  whenever ``gossip_interval_ms`` of virtual time has elapsed since
  the last one, so replication repair rides the same control instants
  as autoscaling.

Partitions are first-class scenario inputs: :meth:`partition_window`
schedules a cut and its heal on the virtual clock, emitting
``partition:<a>|<b>`` spans so trace analysis can correlate replication
lag spikes with the outage that caused them.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.util.clock import Scheduler

from repro.distrib.cache import (
    TieredCache,
    TieredLocationFixCache,
    TieredPropertyReadCache,
)
from repro.distrib.causal import CausalMonitor, CausalTracker
from repro.distrib.config import DistribConfig
from repro.distrib.idempotency import IdempotencyStore
from repro.distrib.notifications import ReplicatedNotificationTable
from repro.distrib.replication import PartitionMap, ReplicatedTable
from repro.distrib.saga import SagaOrchestrator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.obs import Observability


class DistribRuntime:
    """One deployment's distributed data tier."""

    def __init__(
        self,
        scheduler: Scheduler,
        config: DistribConfig,
        *,
        observability: Optional["Observability"] = None,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.observability = observability
        self._injector = injector
        self.partitions = PartitionMap()
        self._tables: Dict[str, ReplicatedTable] = {}
        self._caches: Dict[str, TieredCache] = {}
        self._location_caches: Dict[str, TieredLocationFixCache] = {}
        self._property_cache: Optional[TieredPropertyReadCache] = None
        self._notifications: Optional[ReplicatedNotificationTable] = None
        #: Shared per-region vector clocks + write visibility tracking —
        #: one tracker orders events across every table and cache.
        self.causal = CausalTracker(
            config.regions,
            metrics=observability.metrics if observability else None,
        )
        #: The happens-before audit (stale reads, LWW inversions).
        self.monitor = CausalMonitor(observability=observability)
        self.idempotency = IdempotencyStore(
            observability.metrics if observability else None,
            capacity=config.idempotency_capacity,
            label="distrib",
            region=config.home_region,
        )
        self.sagas = SagaOrchestrator(
            scheduler,
            observability=observability,
            region=config.home_region,
            causal=self.causal,
        )
        self._last_sweep_ms = scheduler.clock.now_ms

    # -- wiring ---------------------------------------------------------------

    def bind_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Late-bind the fault injector to every table (fleet wiring)."""
        self._injector = injector
        for table in self._tables.values():
            table.bind_injector(injector)

    @property
    def _metrics(self):
        return self.observability.metrics if self.observability else None

    @property
    def _tracer(self):
        tracer = self.observability.tracer if self.observability else None
        return tracer if tracer is not None and tracer.enabled else None

    # -- tables and caches ----------------------------------------------------

    def table(self, name: str) -> ReplicatedTable:
        """The named replicated table (lazily created)."""
        table = self._tables.get(name)
        if table is None:
            table = ReplicatedTable(
                name,
                self.config,
                self.scheduler,
                self.partitions,
                observability=self.observability,
                injector=self._injector,
                causal=self.causal,
                monitor=self.monitor,
            )
            self._tables[name] = table
        return table

    def tables(self) -> Dict[str, ReplicatedTable]:
        return dict(self._tables)

    def cache(
        self, name: str, *, loader: Optional[Callable[[str], Any]] = None
    ) -> TieredCache:
        """The named tiered cache (lazily created over ``cache:<name>``)."""
        cache = self._caches.get(name)
        if cache is None:
            cache = TieredCache(
                name,
                self.config,
                self.scheduler,
                self.table(f"cache:{name}"),
                self.partitions,
                loader=loader,
                observability=self.observability,
                causal=self.causal,
                monitor=self.monitor,
            )
            self._caches[name] = cache
        elif loader is not None and cache._loader is None:
            cache._loader = loader
        return cache

    def location_cache(self, label: str) -> TieredLocationFixCache:
        """A ``LocationFixCache``-shaped view over the location tier."""
        adapter = self._location_caches.get(label)
        if adapter is None:
            adapter = TieredLocationFixCache(
                self.cache("location"),
                label=label,
                metrics=self._metrics,
            )
            self._location_caches[label] = adapter
        return adapter

    def property_cache(self) -> TieredPropertyReadCache:
        """The tier-backed property-read cache (runtime swap-in)."""
        if self._property_cache is None:
            self._property_cache = TieredPropertyReadCache(
                self.cache("properties"), self._metrics
            )
        return self._property_cache

    def notifications(self) -> ReplicatedNotificationTable:
        """The replicated WebView notification table."""
        if self._notifications is None:
            self._notifications = ReplicatedNotificationTable(
                self.table("notifications"), injector=self._injector
            )
        return self._notifications

    # -- partitions -----------------------------------------------------------

    def _count(self, metric: str, **labels: Any) -> None:
        if self._metrics is not None:
            self._metrics.counter(metric, **labels).inc()

    def _partition_span(self, event: str, a: str, b: str) -> None:
        tracer = self._tracer
        if tracer is not None:
            first, second = sorted((a, b))
            with tracer.span(
                f"partition:{first}|{second}", event=event, a=first, b=second
            ):
                pass

    def partition(self, a: str, b: str) -> None:
        """Cut the region pair now (both directions)."""
        self.partitions.partition(a, b)
        self._count("distrib.partitions")
        self._partition_span("cut", a, b)

    def heal(self, a: str, b: str) -> None:
        self.partitions.heal(a, b)
        self._count("distrib.heals")
        self._partition_span("heal", a, b)

    def heal_all(self) -> None:
        for a, b in self.partitions.edges():
            self.heal(a, b)

    def partition_window(
        self, a: str, b: str, start_ms: float, end_ms: float
    ) -> None:
        """Schedule a cut at ``start_ms`` and its heal at ``end_ms``
        (absolute virtual time) on the shared scheduler."""
        if end_ms <= start_ms:
            raise ValueError(
                f"partition window must be ordered, got [{start_ms}, {end_ms}]"
            )
        self.scheduler.call_at(
            start_ms, lambda: self.partition(a, b), name=f"partition:{a}|{b}"
        )
        self.scheduler.call_at(
            end_ms, lambda: self.heal(a, b), name=f"heal:{a}|{b}"
        )

    # -- gossip driver --------------------------------------------------------

    def tick(self) -> None:
        """Drain-hook entry point: sweep when the gossip interval has
        elapsed.  Cheap when it has not (one clock read)."""
        now = self.scheduler.clock.now_ms
        if now - self._last_sweep_ms >= self.config.gossip_interval_ms:
            self.sweep_now()

    def sweep_now(self) -> int:
        """Run one anti-entropy round over every table now."""
        self._last_sweep_ms = self.scheduler.clock.now_ms
        merges = 0
        for name in sorted(self._tables):
            merges += self._tables[name].anti_entropy_sweep()
        return merges

    def run_until_converged(self, *, max_rounds: int = 100) -> int:
        """Sweep (advancing past in-flight replication between rounds)
        until every table converges; returns rounds used.  Partitions
        must be healed first or this raises after ``max_rounds``."""
        for round_number in range(max_rounds):
            if self.converged:
                return round_number
            # Let in-flight replication messages land first.
            self.scheduler.run_for(self.config.replication_delay_ms)
            self.sweep_now()
        if not self.converged:
            raise RuntimeError(
                f"replicas did not converge within {max_rounds} gossip rounds "
                f"(partitions active: {self.partitions.edges()})"
            )
        return max_rounds

    @property
    def converged(self) -> bool:
        """Whether every table's replicas hold identical state."""
        return all(
            self._tables[name].converged for name in sorted(self._tables)
        )

    # -- export ---------------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Deterministic snapshot of the whole tier."""
        return {
            "config": {
                "regions": list(self.config.regions),
                "write_quorum": self.config.write_quorum,
                "seed": self.config.seed,
            },
            "tables": {
                name: self._tables[name].export_state()
                for name in sorted(self._tables)
            },
            "content_hashes": {
                name: self._tables[name].content_hashes()
                for name in sorted(self._tables)
            },
            "partitions": [list(edge) for edge in self.partitions.edges()],
            "causal": {
                "clocks": {
                    region: dict(sorted(clock.items()))
                    for region, clock in self.causal.clocks().items()
                },
                "violations": self.monitor.export_state(),
            },
            # Count only: the raw keys embed a process-global chain
            # ordinal that would differ between same-seed runs sharing
            # one interpreter.
            "dedup_records": len(self.idempotency),
            "sagas": [
                {
                    "saga_id": execution.saga_id,
                    "name": execution.name,
                    "status": execution.status,
                    "steps": [step.name for step, _ in execution.completed_steps],
                }
                for execution in self.sagas.executions
            ],
        }

    def export_json(self) -> str:
        """The snapshot as canonical JSON (sorted keys) — the thing the
        byte-identical-determinism property hashes.  Non-JSON values
        (cached dataclasses) export by their deterministic ``repr``."""
        return json.dumps(
            self.export_state(), sort_keys=True, indent=2, default=repr
        )
