"""The distributed data tier (see ``docs/DISTRIBUTION.md``).

A seeded, virtual-clock-deterministic simulation of the multi-region
substrate a production deployment of the middleware would run on:

* :mod:`~repro.distrib.replication` — per-key LWW-versioned replicated
  tables, anti-entropy gossip, injectable partitions;
* :mod:`~repro.distrib.cache` — read-through/write-behind tiered caches
  with cross-region invalidation fan-out and staleness accounting;
* :mod:`~repro.distrib.idempotency` — the idempotency-key store that
  makes retried substrate writes exactly-once;
* :mod:`~repro.distrib.saga` — compensating multi-step flows;
* :mod:`~repro.distrib.notifications` — the WebView notification table
  (paper Figure 6) replicated across regions;
* :mod:`~repro.distrib.causal` — per-region vector clocks, causal span
  stamps (``causal.origin`` / ``causal.vc``), write→visibility lag
  tracking and the happens-before audit;
* :mod:`~repro.distrib.runtime` — the bundle
  ``ConcurrencyRuntime(distrib=DistribConfig(...))`` mounts.

Everything rides the shared virtual-time :class:`~repro.util.clock.Scheduler`
and string-seeded RNG streams: same seed, same scenario ⇒ byte-identical
exports.
"""

from repro.distrib.causal import (
    CausalMonitor,
    CausalStamp,
    CausalTracker,
    decode_vc,
    encode_vc,
    vc_dominates,
)
from repro.distrib.config import DEFAULT_REGIONS, DistribConfig
from repro.distrib.idempotency import (
    ChainContext,
    IdempotencyStore,
    chain_context,
    current_chain,
)
from repro.distrib.replication import (
    PartitionMap,
    ReplicaState,
    ReplicatedTable,
    Version,
    VersionedEntry,
)
from repro.distrib.cache import (
    TieredCache,
    TieredLocationFixCache,
    TieredPropertyReadCache,
)
from repro.distrib.saga import SagaExecution, SagaOrchestrator, SagaStep
from repro.distrib.notifications import ReplicatedNotificationTable
from repro.distrib.runtime import DistribRuntime

__all__ = [
    "DEFAULT_REGIONS",
    "CausalMonitor",
    "CausalStamp",
    "CausalTracker",
    "ChainContext",
    "DistribConfig",
    "DistribRuntime",
    "IdempotencyStore",
    "PartitionMap",
    "ReplicaState",
    "ReplicatedNotificationTable",
    "ReplicatedTable",
    "SagaExecution",
    "SagaOrchestrator",
    "SagaStep",
    "TieredCache",
    "TieredLocationFixCache",
    "TieredPropertyReadCache",
    "Version",
    "VersionedEntry",
    "chain_context",
    "current_chain",
    "decode_vc",
    "encode_vc",
    "vc_dominates",
]
