"""Configuration for the distributed data tier.

One frozen dataclass describes the whole tier: the region set, the
replication/gossip cadence, the write quorum, and the cache/write-behind
timings.  Everything is virtual-time milliseconds and a single integer
seed — the tier derives per-table RNG streams from it, so the same
config and seed replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Default simulated regions.  Names are arbitrary labels; ordering
#: matters — the first region is the *home* region where single-node
#: components (the WebView notification table, local caches) write.
DEFAULT_REGIONS: Tuple[str, ...] = ("ap-south", "eu-west")


@dataclass(frozen=True)
class DistribConfig:
    """Immutable description of the distributed data tier.

    Parameters
    ----------
    regions:
        Simulated region names.  At least one; the first is the home
        region.  Duplicates are rejected.
    replication_delay_ms:
        Virtual one-way latency of an inter-region replication or
        invalidation message.
    gossip_interval_ms:
        Minimum virtual time between anti-entropy sweeps.  The sweep is
        driven from the cooperative scheduler's drain hook, so it fires
        at the first drain tick after the interval elapses.
    gossip_fanout:
        How many peers each region pulls from per sweep (clamped to the
        peer count).
    write_quorum:
        How many replicas (including the origin) a write must be able
        to reach; an unreachable quorum raises
        :class:`~repro.errors.ProxyReplicaUnavailableError` (code 1014).
    write_behind_delay_ms:
        Virtual delay before a tiered cache flushes a buffered write to
        its backing replicated table.
    cache_staleness_ms:
        Maximum age of a tiered-cache L1 slot before a read falls
        through to the backing store.
    idempotency_capacity:
        Optional bound on remembered idempotency keys (FIFO eviction);
        ``None`` keeps every key for the run (fine for simulation).
    seed:
        Root seed for every RNG stream the tier derives.
    """

    regions: Tuple[str, ...] = DEFAULT_REGIONS
    replication_delay_ms: float = 250.0
    gossip_interval_ms: float = 1_000.0
    gossip_fanout: int = 1
    write_quorum: int = 1
    write_behind_delay_ms: float = 500.0
    cache_staleness_ms: float = 5_000.0
    idempotency_capacity: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))
        if not self.regions:
            raise ConfigurationError("distrib needs at least one region")
        if len(set(self.regions)) != len(self.regions):
            raise ConfigurationError(f"duplicate regions: {self.regions}")
        if self.replication_delay_ms < 0:
            raise ConfigurationError("replication_delay_ms cannot be negative")
        if self.gossip_interval_ms <= 0:
            raise ConfigurationError("gossip_interval_ms must be positive")
        if self.gossip_fanout < 1:
            raise ConfigurationError("gossip_fanout must be >= 1")
        if not 1 <= self.write_quorum <= len(self.regions):
            raise ConfigurationError(
                f"write_quorum must be in [1, {len(self.regions)}], "
                f"got {self.write_quorum}"
            )
        if self.write_behind_delay_ms < 0:
            raise ConfigurationError("write_behind_delay_ms cannot be negative")
        if self.cache_staleness_ms <= 0:
            raise ConfigurationError("cache_staleness_ms must be positive")
        if self.idempotency_capacity is not None and self.idempotency_capacity < 1:
            raise ConfigurationError(
                "idempotency_capacity must be >= 1 when given"
            )

    @property
    def home_region(self) -> str:
        """The region single-node components write to (first declared)."""
        return self.regions[0]
