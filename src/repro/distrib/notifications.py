"""Replicated notification table: the Figure-6 table across regions.

Drop-in replacement for the single-node WebView
:class:`~repro.platforms.webview.notifications.NotificationTable`
(same API: ``new_id`` / ``post`` / ``pending`` / ``drain`` /
``drain_json`` / ``close`` / ``total_posted`` / ``dropped``), with the
queue state stored per-id in a :class:`~repro.distrib.replication.ReplicatedTable`
instead of a local dict.  All *mutations* happen at the home region —
the WebView's JS/Java bridge is a single-device construct — but every
post replicates, so a peer region (a failover poller, an analytics
reader) converges on the same queues.  :meth:`pending_in` exposes the
cross-region view; the drain counter replicates too, so a drained
queue does not resurrect on a late replica.

The per-id value shape is ``{"events": [...], "drained": n}`` where
``events`` holds every event ever posted and ``drained`` how many of
them the JS poller already consumed — append-only plus a cursor, so
LWW merges never lose events to replica races.  ``close`` tombstones
the id (``None``), which also replicates.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.platforms.webview.notifications import Notification
from repro.util.identifiers import IdGenerator

from repro.distrib.replication import ReplicatedTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector


class ReplicatedNotificationTable:
    """NotificationTable API over a replicated backing table."""

    def __init__(
        self,
        backing: ReplicatedTable,
        *,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.backing = backing
        self._ids = IdGenerator()
        self._faults = injector
        self._posted_count = 0
        #: Fault-plane observability: results silently lost before queueing.
        self.dropped = 0

    @property
    def _home(self) -> str:
        return self.backing.config.home_region

    def _state(self, notification_id: str, *, region: Optional[str] = None):
        return self.backing.get(notification_id, region=region)

    # -- NotificationTable API ------------------------------------------------

    def new_id(self) -> str:
        """Mint a fresh notification id and create its (empty) queue."""
        notification_id = self._ids.next("notif")
        self.backing.put(
            notification_id, {"events": [], "drained": 0}, region=self._home
        )
        return notification_id

    def post(
        self,
        notification_id: str,
        kind: str,
        payload: Dict[str, Any],
        now_ms: float,
    ) -> None:
        """Queue a result for ``notification_id`` (home-region write)."""
        state = self._state(notification_id)
        if state is None:
            raise KeyError(f"unknown notification id {notification_id!r}")
        json.dumps(payload)  # raises TypeError on non-primitive content
        if self._faults is not None and self._faults.active:
            if self._faults.decide("webview.notification") is not None:
                self.dropped += 1
                return
        events = list(state["events"])
        events.append(
            {"kind": kind, "payload": dict(payload), "posted_at_ms": now_ms}
        )
        self.backing.put(
            notification_id,
            {"events": events, "drained": state["drained"]},
            region=self._home,
        )
        self._posted_count += 1

    def pending(self, notification_id: str) -> int:
        """Queued-but-undrained count for an id (home-region view)."""
        return self.pending_in(self._home, notification_id)

    def pending_in(self, region: str, notification_id: str) -> int:
        """The undrained count as ``region`` currently sees it — lags the
        home region by the replication delay (or a partition)."""
        state = self._state(notification_id, region=region)
        if state is None:
            return 0
        return len(state["events"]) - state["drained"]

    def drain(self, notification_id: str) -> List[Notification]:
        """Remove and return all queued notifications for an id (FIFO).

        A non-empty drain advances the replicated cursor — a home-region
        write like any other — under a ``notify.drain`` span so the
        causal analyzer sees the drain (and its replication to peer
        regions) as one hop.
        """
        state = self._state(notification_id)
        if state is None:
            return []
        fresh = state["events"][state["drained"]:]
        if fresh:
            cursor = {
                "events": state["events"],
                "drained": len(state["events"]),
            }
            tracer = self.backing._tracer
            if tracer is not None:
                with tracer.span(
                    "notify.drain",
                    table=self.backing.name,
                    notification_id=notification_id,
                    region=self._home,
                    drained=len(fresh),
                ):
                    self.backing.put(
                        notification_id, cursor, region=self._home
                    )
            else:
                self.backing.put(notification_id, cursor, region=self._home)
        return [
            Notification(notification_id, e["kind"], e["payload"], e["posted_at_ms"])
            for e in fresh
        ]

    def drain_json(self, notification_id: str) -> str:
        """Bridge-legal drain: the queued notifications as a JSON string."""
        drained = self.drain(notification_id)
        return json.dumps(
            [
                {"kind": n.kind, "payload": n.payload, "posted_at_ms": n.posted_at_ms}
                for n in drained
            ]
        )

    def close(self, notification_id: str) -> None:
        """Forget an id once its JS consumer is done polling."""
        if self._state(notification_id) is not None:
            self.backing.delete(notification_id, region=self._home)

    @property
    def total_posted(self) -> int:
        return self._posted_count
