"""Saga orchestration for multi-step proxy flows.

A saga is a sequence of steps (locate → enrich → POST report) where a
later failure must undo the earlier steps' effects.  Each
:class:`SagaStep` pairs a zero-arg ``action`` with an optional
``compensation`` that receives the action's result; when a step raises
a :class:`~repro.errors.ProxyError`, the orchestrator runs the
completed steps' compensations in reverse order and re-raises.
Non-proxy exceptions are *bugs*, not failures — they propagate without
compensation so tests see them loudly.

Crash recovery: :meth:`SagaOrchestrator.recover` compensates every
execution still ``pending`` — the restart path after a simulated crash
leaves sagas in doubt (the chaos suite kills an orchestrator mid-saga
and asserts recovery restores the invariants).

Tracing: each saga is one span tree — ``saga:<name>`` wrapping
``saga.step:<step>`` and ``saga.compensate:<step>`` children, with
``saga.step.failed`` / ``saga.completed`` / ``saga.compensated``
events, so ``python -m repro.obs distrib`` can fold a trace into a
saga table.  Metrics: ``distrib.sagas_started`` / ``_completed`` /
``_compensated`` and ``distrib.saga_steps`` (labelled with the home
``region`` when the orchestrator is mounted region-aware).

Causal joinability: a region-aware orchestrator stamps the ``saga:``
span with ``region``, the vector clock at begin time (``causal.vc``)
and — when the saga runs inside an open attempt chain — the chain's
deterministic ``chain`` tag, so the causal analyzer can stitch retried
saga attempts and their replicated writes into one cross-region graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProxyError
from repro.util.clock import Scheduler
from repro.util.idempotency import current_chain

from repro.distrib.causal import CausalTracker, encode_vc


@dataclass(frozen=True)
class SagaStep:
    """One step: what to do, and how to undo it.

    ``action`` takes no arguments and returns the step result;
    ``compensation`` (optional) receives that result.  A step with no
    compensation is assumed side-effect-free (reads).
    """

    name: str
    action: Callable[[], Any]
    compensation: Optional[Callable[[Any], None]] = None


class SagaExecution:
    """One running saga: results so far, completed steps, status.

    Status lifecycle: ``pending`` → ``completed`` (all steps ran and
    :meth:`complete` was called) or ``compensated`` (a step failed, or
    :meth:`SagaOrchestrator.recover` swept it up).
    """

    def __init__(self, orchestrator: "SagaOrchestrator", saga_id: int, name: str):
        self._orchestrator = orchestrator
        self.saga_id = saga_id
        self.name = name
        self.status = "pending"
        self.results: Dict[str, Any] = {}
        self.completed_steps: List[Tuple[SagaStep, Any]] = []
        self._span = None

    # -- step execution -------------------------------------------------------

    def step(
        self,
        name: str,
        action: Callable[[], Any],
        compensation: Optional[Callable[[Any], None]] = None,
    ) -> Any:
        """Run one step; on :class:`ProxyError` compensate and re-raise."""
        return self.run_step(SagaStep(name, action, compensation))

    def run_step(self, step: SagaStep) -> Any:
        if self.status != "pending":
            raise ValueError(
                f"saga {self.name!r} is {self.status}; cannot run step "
                f"{step.name!r}"
            )
        orch = self._orchestrator
        orch._count("distrib.saga_steps", saga=self.name)
        tracer = orch._tracer
        step_attrs: Dict[str, Any] = {"saga": self.name}
        if orch.region is not None:
            step_attrs["region"] = orch.region
        step_span = (
            tracer.start_span(f"saga.step:{step.name}", **step_attrs)
            if tracer is not None
            else None
        )
        try:
            result = step.action()
        except ProxyError as exc:
            if tracer is not None:
                tracer.event(
                    "saga.step.failed",
                    saga=self.name,
                    step=step.name,
                    error=type(exc).__name__,
                )
                step_span.mark_error(exc)
                tracer.end_span(step_span)
            self.compensate(reason=type(exc).__name__)
            raise
        else:
            if step_span is not None:
                tracer.end_span(step_span)
        self.results[step.name] = result
        self.completed_steps.append((step, result))
        return result

    # -- terminal transitions -------------------------------------------------

    def complete(self) -> "SagaExecution":
        """Mark the saga successfully finished and close its span."""
        if self.status != "pending":
            return self
        self.status = "completed"
        orch = self._orchestrator
        orch._count("distrib.sagas_completed", saga=self.name)
        tracer = orch._tracer
        if tracer is not None:
            tracer.event(
                "saga.completed", saga=self.name, steps=len(self.completed_steps)
            )
            if self._span is not None:
                tracer.end_span(self._span)
        return self

    def compensate(self, *, reason: str = "requested") -> "SagaExecution":
        """Undo completed steps in reverse order; terminal state
        ``compensated``.  Compensations for steps without one are
        skipped (declared side-effect-free)."""
        if self.status != "pending":
            return self
        self.status = "compensated"
        orch = self._orchestrator
        tracer = orch._tracer
        comp_attrs: Dict[str, Any] = {"saga": self.name, "reason": reason}
        if orch.region is not None:
            comp_attrs["region"] = orch.region
        for step, result in reversed(self.completed_steps):
            if step.compensation is None:
                continue
            if tracer is not None:
                with tracer.span(
                    f"saga.compensate:{step.name}", **comp_attrs
                ):
                    step.compensation(result)
            else:
                step.compensation(result)
        orch._count("distrib.sagas_compensated", saga=self.name)
        if tracer is not None:
            tracer.event(
                "saga.compensated",
                saga=self.name,
                reason=reason,
                undone=len(self.completed_steps),
            )
            if self._span is not None:
                tracer.end_span(self._span)
        return self


class SagaOrchestrator:
    """Begins, runs and recovers sagas on the shared virtual clock.

    ``region`` (optional) is the home region sagas execute in — it
    labels every saga metric and span so timelines group by region;
    ``causal`` (optional) is the tier's shared
    :class:`~repro.distrib.causal.CausalTracker`, ticked at saga begin
    so the ``saga:`` span carries the vector clock of its start.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        observability=None,
        region: Optional[str] = None,
        causal: Optional[CausalTracker] = None,
    ) -> None:
        self._scheduler = scheduler
        self._observability = observability
        self.region = region
        self.causal = causal
        self._seq = 0
        self.executions: List[SagaExecution] = []

    @property
    def _tracer(self):
        tracer = self._observability.tracer if self._observability else None
        return tracer if tracer is not None and tracer.enabled else None

    def _count(self, metric: str, **labels: Any) -> None:
        if self._observability is not None:
            if self.region is not None:
                labels.setdefault("region", self.region)
            self._observability.metrics.counter(metric, **labels).inc()

    def begin(self, name: str) -> SagaExecution:
        """Open a saga (and its ``saga:<name>`` span); the caller drives
        steps and must end with :meth:`SagaExecution.complete` — an
        execution left ``pending`` is in doubt and :meth:`recover`
        will compensate it."""
        self._seq += 1
        execution = SagaExecution(self, self._seq, name)
        self.executions.append(execution)
        self._count("distrib.sagas_started", saga=name)
        tracer = self._tracer
        if tracer is not None:
            attributes: Dict[str, Any] = {"saga": name, "saga_id": self._seq}
            if self.region is not None:
                attributes["region"] = self.region
                if self.causal is not None:
                    attributes["causal.vc"] = encode_vc(
                        self.causal.tick(self.region)
                    )
            chain = current_chain()
            if chain is not None and getattr(chain, "tag", None):
                attributes["chain"] = chain.tag
            execution._span = tracer.start_span(f"saga:{name}", **attributes)
        return execution

    def run(self, name: str, steps: Sequence[SagaStep]) -> SagaExecution:
        """Run ``steps`` to completion; a failing step compensates the
        completed prefix and the :class:`ProxyError` propagates."""
        execution = self.begin(name)
        for step in steps:
            execution.run_step(step)
        return execution.complete()

    def recover(self) -> List[SagaExecution]:
        """Compensate every in-doubt (still ``pending``) execution —
        the crash-recovery path.  Returns the executions swept."""
        recovered = []
        for execution in self.executions:
            if execution.status == "pending":
                self._count("distrib.sagas_recovered", saga=execution.name)
                execution.compensate(reason="recovery")
                recovered.append(execution)
        return recovered

    def by_status(self, status: str) -> List[SagaExecution]:
        return [e for e in self.executions if e.status == status]
