#!/usr/bin/env python
"""The maintenance story: Android m5-rc15 → 1.0 (Section 5).

Release 1.0 changed ``addProximityAlert`` to take a ``PendingIntent``.
This example shows all four quadrants:

* native m5 code on m5       — works
* native m5 code on 1.0      — IllegalArgumentException (must be ported)
* proxied code on m5         — works
* proxied code on 1.0        — works, byte-identical application

and prints the measured change impact from the real sources.

Run:  python examples/platform_evolution.py
"""

from repro.analysis.maintenance import sdk_migration_report
from repro.apps.workforce import scenario
from repro.apps.workforce.native_android import (
    WorkforceNativeAndroid,
    WorkforceNativeAndroidV10,
)
from repro.apps.workforce.proxied import launch_on_android
from repro.platforms.android.exceptions import IllegalArgumentException
from repro.platforms.android.versions import SdkVersion


def run_native(app_class, sdk):
    sc = scenario.build_android(sdk_version=sdk)
    app = app_class(sc.platform, scenario.PACKAGE)
    app.config = sc.config
    try:
        app.perform_launch()
    except IllegalArgumentException as error:
        return f"FAILS: IllegalArgumentException: {error}"
    sc.platform.run_for(200_000.0)
    return f"works: {app.activity_events}"


def run_proxied(sdk):
    sc = scenario.build_android(sdk_version=sdk)
    logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
    sc.platform.run_for(200_000.0)
    return f"works: {logic.activity_events}"


def main():
    print("== Native application (Figure 2a style) ==")
    print(f"  m5 code on SDK m5-rc15 : {run_native(WorkforceNativeAndroid, SdkVersion.M5_RC15)}")
    print(f"  m5 code on SDK 1.0     : {run_native(WorkforceNativeAndroid, SdkVersion.V1_0)}")
    print(f"  ported code on SDK 1.0 : {run_native(WorkforceNativeAndroidV10, SdkVersion.V1_0)}")

    print("\n== Proxied application (Figure 8 style), UNMODIFIED ==")
    print(f"  on SDK m5-rc15         : {run_proxied(SdkVersion.M5_RC15)}")
    print(f"  on SDK 1.0             : {run_proxied(SdkVersion.V1_0)}")

    print("\n== Measured change impact (from the real module sources) ==")
    report = sdk_migration_report()
    print(
        f"  without proxies: {report.native_impact.changed} lines changed "
        f"({report.native_impact.fraction:.1%} of the registration code)"
    )
    print(f"  with proxies   : {report.proxied_impact.changed} lines changed")
    print(
        "\n  The difference is absorbed inside the Android binding, which "
        "wraps the Intent\n  in a PendingIntent when "
        "platform.sdk_version requires it."
    )


if __name__ == "__main__":
    main()
