#!/usr/bin/env python
"""Inside the WebView proxy machinery (paper Figure 6).

Walks the three steps of the JavaScript proxy implementation and shows
*why* the design exists by hitting the bridge's constraints directly:

1. a JS function cannot cross the bridge (BridgeMarshalError),
2. Java exceptions reach JS untyped — proxies convert them to error codes,
3. asynchronous results flow through the Notification Table, drained by
   the ``notifHandler`` polling loop.

Run:  python examples/webview_bridge.py
"""

from repro.apps.workforce import scenario
from repro.core.proxies.sms.webview import SmsProxyJs, install_sms_wrapper
from repro.errors import ProxyPermissionError
from repro.platforms.webview.exceptions import BridgeMarshalError, JsBridgeError


def main():
    sc = scenario.build_webview()
    context = sc.new_context()
    webview = sc.platform.new_webview()

    # The plugin's platform extension injects the Java side.
    wrapper = install_sms_wrapper(webview, sc.platform, context)
    print("Injected Java objects:", webview.bridge.names())

    def page(window):
        print("\n== 1. Callbacks cannot cross the bridge ==")
        sms_wrapper = window.bridge_object("SmsWrapper")
        try:
            sms_wrapper.send_text_message(1, "+1", (lambda: None))
        except BridgeMarshalError as error:
            print(f"  BridgeMarshalError: {error}")

        print("\n== 2. Raw Java exceptions arrive untyped ==")
        try:
            sms_wrapper.get_notifications(12345)  # wrong type inside Java
        except JsBridgeError as error:
            print(f"  JsBridgeError: java class={error.java_class!r}")
        except Exception as error:  # depending on path, marshal error
            print(f"  {type(error).__name__}: {error}")

        print("\n== 3. The proxy: factory -> handle -> notification table ==")
        proxy = SmsProxyJs.in_page(window)
        print(f"  wrapper instance handle (the figure's 'swi'): {proxy._swi}")
        events = []
        message_id = proxy.send_text_message(
            "+915550001",
            "polled hello",
            lambda event, mid, reason: events.append((event, mid)),
        )
        print(f"  sent message {message_id}; polling for status...")
        window.set_global("events", events)

    window = webview.load_page(page)
    sc.platform.run_for(10_000.0)
    print(f"  status events delivered by polling: {window.get_global('events')}")
    print(
        f"  notifications posted Java-side: "
        f"{sc.platform.notification_table.total_posted}"
    )

    print("\n== 4. Proxies turn Java exceptions into stable error codes ==")
    sc.platform.android.install("noperm", set())
    webview2 = sc.platform.new_webview()
    install_sms_wrapper(webview2, sc.platform, sc.platform.android.new_context("noperm"))

    def page2(window):
        proxy = SmsProxyJs.in_page(window)
        try:
            proxy.send_text_message("+1", "will be denied")
        except ProxyPermissionError as error:
            print(f"  ProxyPermissionError (code {type(error).error_code}): {error}")

    webview2.load_page(page2)


if __name__ == "__main__":
    main()
