#!/usr/bin/env python
"""Extending MobiVine (paper Section 3.3): new interfaces, new platforms.

Two extension axes, both implemented:

1. **New interface** — the Contacts proxy (the paper's future-work item)
   gets the full three-plane treatment and works on all three platforms.
2. **New platform** — a vendor brings a BREW-like platform: they register
   the platform name, implement their substrate and publish ONLY a
   binding plane for the existing Http proxy.  The semantic and syntactic
   planes, the drawer, the dialogs and the uniform API all come for free.

Run:  python examples/extending_mobivine.py
"""

from repro.apps.workforce import scenario
from repro.core.descriptor.model import (
    BindingPlane,
    ExceptionSpec,
    known_platforms,
    register_platform,
)
from repro.core.descriptor.registry import ProxyRegistry
from repro.core.plugin.drawer import ProxyDrawer
from repro.core.proxies import create_proxy
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.http.api import HttpProxy
from repro.core.proxies.http.descriptor import build_http_descriptor
from repro.core.proxy.datatypes import HttpResult
from repro.device.device import MobileDevice
from repro.device.network import HttpRequest, HttpResponse
from repro.platforms.android.calendar_provider import READ_CALENDAR, WRITE_CALENDAR
from repro.platforms.android.contacts import READ_CONTACTS, WRITE_CONTACTS
from repro.platforms.base import PlatformBase


def demo_contacts_interface():
    print("== 1. New interfaces: Contacts and Calendar (the paper's future work) ==")
    sc = scenario.build_android()
    sc.platform.install(
        "pim", {READ_CONTACTS, WRITE_CONTACTS, READ_CALENDAR, WRITE_CALENDAR}
    )
    context = sc.platform.new_context("pim")
    proxy = create_proxy("Contacts", sc.platform)
    proxy.set_property("context", context)
    proxy.add_contact("Region Supervisor", "+915550001")
    proxy.add_contact("Dispatch Desk", "+915550002")
    for contact in proxy.list_contacts():
        print(f"  {contact.name:20s} {contact.primary_number}")
    print(f"  find 'disp' -> {[c.name for c in proxy.find_by_name('disp')]}")

    calendar = create_proxy("Calendar", sc.platform)
    calendar.set_property("context", context)
    calendar.set_property("eventLocation", "site-7")
    calendar.add_event("Maintenance window", 3_600_000.0, 7_200_000.0)
    calendar.add_event("Shift handover", 7_200_000.0, 7_500_000.0)
    for event in calendar.events_between(0.0, 7_200_000.0):
        print(f"  event: {event.summary!r} at {event.location} "
              f"({event.duration_ms / 60000:.0f} min)")


class BrewPlatform(PlatformBase):
    """The vendor's minimal substrate: one blocking fetch call."""

    platform_name = "brew"

    def brew_fetch(self, method, url, body=""):
        from urllib.parse import urlparse

        parsed = urlparse(url)
        self.charge_native("brew.fetch")
        response = self.device.network.request(
            HttpRequest(method=method, host=parsed.netloc,
                        path=parsed.path or "/", body=body)
        )
        return response.status, response.body


class BrewHttpProxyImpl(HttpProxy):
    """The vendor's ONLY MobiVine artifact: the Http binding."""

    def __init__(self, descriptor, platform):
        super().__init__(descriptor, "brew")
        self._platform = platform

    def get(self, url):
        self._validate_arguments("get", url=url)
        with self._guard("get"):
            status, body = self._platform.brew_fetch("GET", url)
        return HttpResult(status=status, body=body)

    def post(self, url, body):
        self._validate_arguments("post", url=url, body=body)
        with self._guard("post"):
            status, response_body = self._platform.brew_fetch("POST", url, body)
        return HttpResult(status=status, body=response_body)


def demo_new_platform():
    print("\n== 2. New platform: binding-only extension ==")
    print(f"  platforms before: {known_platforms()}")
    register_platform("brew", "java")
    register_implementation("com.vendor.brew.http.HttpProxyImpl", BrewHttpProxyImpl)
    print(f"  platforms after : {known_platforms()}")

    registry = ProxyRegistry()
    registry.register(build_http_descriptor())  # existing planes, reused
    registry.add_binding(
        "Http",
        BindingPlane(
            platform="brew",
            language="java",
            implementation_class="com.vendor.brew.http.HttpProxyImpl",
            exceptions=(
                ExceptionSpec("com.vendor.brew.BrewIOError", "ProxyPlatformError", 1005),
            ),
        ),
    )
    print(f"  Http bindings   : {registry.descriptor('Http').platforms()}")
    print(f"  brew drawer     : {ProxyDrawer(registry, 'brew').categories()}")

    device = MobileDevice("+61")
    platform = BrewPlatform(device)
    device.network.add_server("api.example.com").route(
        "GET", "/status", lambda r: HttpResponse(200, "serving brew")
    )
    proxy = create_proxy("Http", platform, registry=registry)
    result = proxy.get("http://api.example.com/status")
    print(f"  uniform call    : GET /status -> {result.status} {result.body!r}")
    print("  (semantic plane, syntactic plane, drawer and dialog: all reused)")


if __name__ == "__main__":
    demo_contacts_interface()
    demo_new_platform()
