#!/usr/bin/env python
"""The paper's motivating application, end to end (Section 2, Figure 1).

A field agent's handset runs the workforce app; the enterprise server
tracks positions, assigns requests and keeps the activity log.  The SAME
``WorkforceLogic`` class runs on Android, S60 and WebView — only the thin
launcher differs.

Run:  python examples/workforce_management.py
"""

from repro.apps.workforce import scenario
from repro.apps.workforce.common import (
    PATH_POLL_ASSIGNMENT,
    SERVER_HOST,
    encode,
)
from repro.apps.workforce.proxied import (
    launch_on_android,
    launch_on_s60,
    launch_on_webview,
)
from repro.core.plugin.packaging import WebViewPlatformExtension


def run_android():
    sc = scenario.build_android()
    logic = launch_on_android(sc.platform, sc.new_context(), sc.config)
    # dispatcher assigns a job while the agent commutes
    sc.server.dispatch(sc.config.agent.agent_id, sc.config.site.site_id,
                       "replace backup battery")
    sc.platform.run_for(90_000.0)
    logic.report_location()
    # the device polls for its assignment over the HTTP proxy
    result = logic.http.post(
        f"http://{SERVER_HOST}{PATH_POLL_ASSIGNMENT}",
        encode({"agent": sc.config.agent.agent_id}),
    )
    print(f"  assignment poll -> {result.body}")
    sc.platform.run_for(110_000.0)
    logic.report_location()
    return sc, logic


def run_s60():
    sc = scenario.build_s60()
    logic = launch_on_s60(sc.platform, sc.config)
    sc.platform.run_for(200_000.0)
    logic.report_location()
    return sc, logic


def run_webview():
    sc = scenario.build_webview()
    webview = sc.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview, sc.platform, sc.new_context(), ["Location", "Sms", "Http"]
    )
    holder = {}
    webview.load_page(
        lambda window: holder.update(logic=launch_on_webview(sc.platform, sc.config))
    )
    sc.platform.run_for(200_000.0)
    holder["logic"].report_location()
    return sc, holder["logic"]


def dashboard(name, sc, logic):
    agent = sc.config.agent.agent_id
    track = sc.server.track_of(agent)
    print(f"\n-- {name} --")
    print(f"  device events : {logic.activity_events}")
    print(f"  activity log  : {[r.event for r in sc.server.activity_log(agent)]}")
    if track:
        print(
            f"  last position : {track.latitude:.5f}, {track.longitude:.5f} "
            f"({track.report_count} reports)"
        )
    supervisor_inbox = sc.device.sms_center.inbox_of(
        sc.config.agent.supervisor_number
    )
    print(f"  supervisor sms: {[m.text for m in supervisor_inbox]}")


def main():
    print("Workforce management: one business-logic class, three platforms")
    dashboard("Android", *run_android())
    dashboard("Nokia S60", *run_s60())
    dashboard("Android WebView", *run_webview())


if __name__ == "__main__":
    main()
