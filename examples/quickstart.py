#!/usr/bin/env python
"""Quickstart: the same MobiVine proxy code on three different platforms.

Builds a simulated handset per platform, registers a proximity alert,
reads the position and sends an SMS — through the *identical* uniform API
each time.  Also shows the one capability gap proxies cannot invent:
there is no Call proxy on S60.

Run:  python examples/quickstart.py
"""

from repro.apps.workforce import scenario
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import ProximityListener
from repro.errors import ProxyUnavailableError

SITE = scenario.SITE


class PrintingListener(ProximityListener):
    """Uniform callback — the same class works on every platform."""

    def __init__(self, platform_name):
        self.platform_name = platform_name

    def proximity_event(self, ref_lat, ref_lon, ref_alt, current, entering):
        action = "ENTERED" if entering else "LEFT"
        print(
            f"  [{self.platform_name}] {action} site region "
            f"(device at {current.latitude:.5f}, {current.longitude:.5f})"
        )


def drive(platform_name, sc, location, sms):
    """The portable part: identical on Android, S60 and WebView."""
    location.add_proximity_alert(
        SITE.latitude, SITE.longitude, 0.0, SITE.radius_m, -1,
        PrintingListener(platform_name),
    )
    position = location.get_location()
    print(f"  [{platform_name}] current position: "
          f"{position.latitude:.5f}, {position.longitude:.5f}")
    message_id = sms.send_text_message(
        "+915550001", f"hello from {platform_name}",
        lambda event, mid, reason: print(f"  [{platform_name}] sms {event}"),
    )
    print(f"  [{platform_name}] sent message {message_id}")
    sc.platform.run_for(200_000.0)  # drive the simulated world forward


def main():
    print("== Android ==")
    sc = scenario.build_android()
    location = create_proxy("Location", sc.platform)
    location.set_property("context", sc.new_context())  # Android-mandated attribute
    sms = create_proxy("Sms", sc.platform)
    sms.set_property("context", sc.new_context())
    drive("android", sc, location, sms)

    print("\n== Nokia S60 ==")
    sc = scenario.build_s60()
    location = create_proxy("Location", sc.platform)
    location.set_property("preferredResponseTime", 1000)  # S60-mandated attribute
    sms = create_proxy("Sms", sc.platform)
    drive("s60", sc, location, sms)

    print("\n== Android WebView ==")
    sc = scenario.build_webview()
    webview = sc.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview, sc.platform, sc.new_context(), ["Location", "Sms"]
    )

    def page(window):
        location = create_proxy("Location", sc.platform)
        sms = create_proxy("Sms", sc.platform)
        drive("webview", sc, location, sms)

    webview.load_page(page)

    print("\n== The capability gap proxies cannot hide ==")
    sc = scenario.build_s60()
    try:
        create_proxy("Call", sc.platform)
    except ProxyUnavailableError as error:
        print(f"  Call proxy on S60: {error}")


if __name__ == "__main__":
    main()
