#!/usr/bin/env python
"""Fleet dispatch: many agents, one shared simulated world.

Deploys five Android agents with staggered commutes onto shared
infrastructure (one clock, one SMS center, one server), dispatches a job
to each, and prints the enterprise dashboard plus the supervisor's phone.

Run:  python examples/fleet_dispatch.py
"""

from repro.apps.workforce.fleet import build_fleet, launch_fleet


def main():
    fleet = build_fleet(5)
    launch_fleet(fleet)
    for agent in fleet.agents:
        fleet.server.dispatch(
            agent.profile.agent_id, agent.site.site_id, "quarterly inspection"
        )

    print("Running the fleet for five simulated minutes...")
    fleet.run_for(300_000.0)
    for agent in fleet.agents:
        agent.logic.report_location()

    print("\n== Enterprise dashboard ==")
    for agent in fleet.agents:
        track = fleet.server.track_of(agent.profile.agent_id)
        events = [r.event for r in fleet.server.activity_log(agent.profile.agent_id)]
        assignments = fleet.server.assignments_for(agent.profile.agent_id)
        print(
            f"  {agent.profile.agent_id}: events={events} "
            f"assignment={assignments[0].status} "
            f"pos=({track.latitude:.4f}, {track.longitude:.4f})"
        )

    print("\n== Supervisor's handset ==")
    for index, text in enumerate(fleet.supervisor_inbox, start=1):
        print(f"  sms {index}: {text!r}")

    print("\n== Fleet-wide arrival order (staggered commutes) ==")
    arrivals = [
        record.agent_id
        for record in fleet.server.activity_log()
        if record.event == "arrived"
    ]
    print(f"  {arrivals}")

    print("\n== Energy spent per agent (battery accounting) ==")
    for agent in fleet.agents:
        drained = agent.device.battery.capacity_mwh - agent.device.battery.level_mwh
        print(f"  {agent.profile.agent_id}: {drained:.1f} mWh")


if __name__ == "__main__":
    main()
