"""The observability plane: span trees, metrics, deterministic export.

Walks through (1) tracing one fault-free invocation, (2) shaking the
substrate and watching resilience decisions appear as span events and
metrics, and (3) the determinism contract — two identically-seeded runs
export byte-identical JSONL.

Run with:  python examples/tracing_and_metrics.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.workforce import scenario
from repro.core.proxies import create_proxy
from repro.core.resilience import chaos_policy
from repro.faults import FaultPlan
from repro.obs import Observability


def traced_location_call():
    """One fault-free getLocation, fully traced."""
    print("=" * 72)
    print("1. One invocation, one span tree")
    print("=" * 72)

    hub = Observability(capture_real_time=False)
    sc = scenario.build_android(observability=hub)
    sc.platform.run_for(5_000.0)  # let the GPS produce a first fix

    location = create_proxy("Location", sc.platform)
    location.set_property("context", sc.new_context())
    location.set_property("provider", "gps")
    hub.tracer.reset()  # drop setup-era spans; keep the invocation only

    fix = location.get_location()
    print(f"\ngetLocation() -> ({fix.latitude:.4f}, {fix.longitude:.4f})\n")
    print(hub.render_trace())


def traced_chaos_run():
    """A faulty substrate: policy decisions become events and metrics."""
    print()
    print("=" * 72)
    print("2. Under faults: retries, fallbacks and breakers in the trace")
    print("=" * 72)

    hub = Observability(capture_real_time=False)
    sc = scenario.build_android(
        fault_plan=FaultPlan.transient(0.5, seed=7, start_ms=1_000.0),
        observability=hub,
    )
    sc.platform.run_for(5_000.0)

    http = create_proxy(
        "Http", sc.platform, resilience=chaos_policy("Http", seed=7)
    )
    http.set_property("context", sc.new_context())
    hub.tracer.reset()

    for _ in range(3):
        response = http.post(
            "http://workforce.example.com/api/event",
            '{"agent": "agent-7", "event": "checkpoint"}',
        )
        print(f"POST /api/event -> {response.status}")

    print()
    print(hub.render_trace())
    print()
    print("Metrics after the run:")
    print(hub.render_metrics())


def deterministic_export():
    """Same seeds, same bytes: the JSONL export is reproducible."""
    print()
    print("=" * 72)
    print("3. Determinism: identical seeds export identical JSONL")
    print("=" * 72)

    def one_run() -> str:
        hub = Observability(capture_real_time=False)
        sc = scenario.build_android(
            fault_plan=FaultPlan.transient(0.5, seed=7, start_ms=1_000.0),
            observability=hub,
        )
        sc.platform.run_for(5_000.0)
        http = create_proxy(
            "Http", sc.platform, resilience=chaos_policy("Http", seed=7)
        )
        http.set_property("context", sc.new_context())
        http.post(
            "http://workforce.example.com/api/event",
            '{"agent": "agent-7", "event": "checkpoint"}',
        )
        return hub.export_jsonl()

    first, second = one_run(), one_run()
    print(f"\nrun 1: {len(first.splitlines())} spans, {len(first)} bytes")
    print(f"run 2: {len(second.splitlines())} spans, {len(second)} bytes")
    print(f"byte-identical: {first == second}")
    assert first == second
    print("\nFirst exported span:")
    print(first.splitlines()[0])


if __name__ == "__main__":
    traced_location_call()
    traced_chaos_run()
    deterministic_export()
