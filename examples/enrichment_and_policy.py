#!/usr/bin/env python
"""Proxy enrichment (paper Section 3.3): formats, retries, security.

Three value-added layers stacked on plain proxies:

* location output in radians / degrees / DMS,
* call-retry coordination against an unreachable callee,
* a security policy gating which roles may use which proxy APIs.

Run:  python examples/enrichment_and_policy.py
"""

from repro.apps.workforce import scenario
from repro.core.enrichment import (
    CallRetryCoordinator,
    LocationFormatEnrichment,
    Principal,
    RetryPolicy,
    SecuredProxy,
    SecurityPolicy,
)
from repro.core.proxies import create_proxy
from repro.core.proxy.datatypes import AngleFormat
from repro.device.telephony import TelephonyUnit
from repro.errors import ProxyPermissionError


def main():
    sc = scenario.build_android()
    context = sc.new_context()

    print("== Format enrichment ==")
    location = create_proxy("Location", sc.platform)
    location.set_property("context", context)
    for angle_format in (AngleFormat.DEGREES, AngleFormat.RADIANS):
        enriched = LocationFormatEnrichment(location, angle_format)
        position = enriched.get_position()
        print(
            f"  {angle_format.value:8s}: lat={position.latitude:.6f} "
            f"lon={position.longitude:.6f}"
        )
    dms = LocationFormatEnrichment(location).get_position().dms()
    print(f"  dms     : lat={dms[0]}  lon={dms[1]}")

    print("\n== Call retry coordination ==")
    call = create_proxy("Call", sc.platform)
    call.set_property("context", context)
    telephony = sc.device.telephony
    supervisor = sc.config.agent.supervisor_number
    telephony.set_callee_behavior(supervisor, TelephonyUnit.UNREACHABLE)
    coordinator = CallRetryCoordinator(
        call,
        sc.platform.scheduler,
        RetryPolicy(max_attempts=4, retry_delay_ms=3_000.0),
    )
    report = coordinator.make_a_call(supervisor)
    sc.platform.run_for(5_000.0)
    print(f"  after 5s : attempts={report.attempts} outcomes={[o.value for o in report.outcomes]}")
    telephony.set_callee_behavior(supervisor, TelephonyUnit.ANSWER)  # back in coverage
    sc.platform.run_for(30_000.0)
    print(f"  after 35s: attempts={report.attempts} outcomes={[o.value for o in report.outcomes]}")
    print(f"  final call answered: {report.final is None and 'in progress' or report.final.outcome}")

    print("\n== Security policy ==")
    sms = create_proxy("Sms", sc.platform)
    sms.set_property("context", context)
    policy = (
        SecurityPolicy()
        .deny(roles="contractor", interface="Call")
        .allow(roles="contractor", interface="Sms")
        .allow(roles="employee")
    )
    contractor = Principal("temp-7", frozenset({"contractor"}))
    secured_sms = SecuredProxy(sms, policy, contractor)
    message_id = secured_sms.send_text_message(supervisor, "report filed")
    print(f"  contractor SMS allowed: {message_id}")
    secured_call = SecuredProxy(call, policy, contractor)
    try:
        secured_call.make_a_call(supervisor)
    except ProxyPermissionError as error:
        print(f"  contractor Call denied: {error}")
    print("  audit trail:")
    for record in secured_sms.audit_log + secured_call.audit_log:
        print(
            f"    {record.principal} -> {record.interface}.{record.method}: "
            f"{record.decision.value}"
        )


if __name__ == "__main__":
    main()
