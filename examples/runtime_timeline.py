#!/usr/bin/env python
"""Concurrency observability: shard timelines, the critical path, metric
time-series, and the flight recorder.

Drives a sharded dispatcher with a handful of cooperative agents — one
of which crashes, and one of which floods the queue hard enough to shed
— then prints every concurrency-observability view the trace supports:

* the per-shard Gantt timeline with its USE summary,
* the critical path that exactly explains the drain's makespan,
* the sampled ``runtime.queue_depth`` / ``runtime.inflight`` series,
* the flight-recorder dumps the crash and the shed burst triggered.

Everything runs on the virtual clock, so the output is byte-identical
on every run.

Run:  python examples/runtime_timeline.py
"""

from repro.obs import CriticalPath, Observability, ShardTimelines
from repro.runtime import ConcurrencyRuntime
from repro.util.clock import Scheduler, SimulatedClock


def main():
    scheduler = Scheduler(SimulatedClock())
    hub = Observability(capture_real_time=False)
    sampler = hub.install_sampler()
    sampler.track("runtime.queue_depth")
    sampler.track("runtime.inflight")
    flight = hub.install_flight_recorder()

    runtime = ConcurrencyRuntime(
        scheduler, shards=2, queue_depth=3, seed=7, observability=hub
    )
    dispatcher = runtime.dispatcher("android")

    def field_agent(start_ms, legs):
        def workload():
            yield start_ms
            for charge_ms in legs:
                yield dispatcher.submit(
                    "report",
                    lambda c=charge_ms: scheduler.clock.advance(c),
                    tracer=hub.tracer,
                )
                yield 5.0

        return workload()

    def flooding_agent():
        yield 40.0
        futures = [
            dispatcher.submit(
                "poll",
                lambda: scheduler.clock.advance(2.0),
                tracer=hub.tracer,
            )
            for _ in range(12)
        ]
        for future in futures:
            try:
                yield future
            except Exception:
                pass  # shed requests fail fast; the recorder saw them

    def doomed_agent():
        yield 60.0
        raise RuntimeError("firmware panic")

    runtime.spawn("courier-1", field_agent(0.0, [10.0, 15.0]))
    runtime.spawn("courier-2", field_agent(0.0, [12.0, 8.0]))
    runtime.spawn("courier-3", field_agent(20.0, [20.0]))
    runtime.spawn("status-poller", flooding_agent())
    runtime.spawn("doomed", doomed_agent())
    runtime.drain()

    timelines = ShardTimelines.from_spans(hub.tracer.finished_spans())
    path = CriticalPath.from_timelines(timelines)

    print("== Per-shard timeline ==")
    print(timelines.render_text(width=60))

    print("\n== Critical path ==")
    print(path.render_text(max_steps=12))

    print("\n== Sampled metric time-series ==")
    print(sampler.render_text())

    print("\n== Flight recorder ==")
    for dump in flight.dumps:
        print(
            f"  dump #{dump['sequence']}: {dump['reason']} "
            f"@{dump['t_virtual_ms']:.1f}ms "
            f"(+{dump['suppressed']} suppressed, "
            f"{len(dump['spans'])} spans, {len(dump['events'])} events)"
        )


if __name__ == "__main__":
    main()
