#!/usr/bin/env python
"""The M-Plugin flow: drawer → configuration dialog → code → packaging.

Reproduces the developer experience of Figures 7(a) and 7(b): browse the
proxy drawer, configure ``addProximityAlert`` for S60 (note the platform
Properties column with defaults and allowed values), preview the generated
code, embed it into a project, and build the single-jar MIDlet suite.

Run:  python examples/toolkit_codegen.py
"""

from repro.core.plugin import CodeFile, MobiVinePlugin, Toolkit
from repro.core.plugin.codegen import generator_for
from repro.core.proxies import standard_registry
from repro.platforms.s60.packaging import Jar, JarEntry


def main():
    toolkit = Toolkit("eclipse")
    registry = standard_registry()

    print("== Proxy Drawer per platform (Figure 7a) ==")
    for platform in ("android", "s60", "webview"):
        plugin = MobiVinePlugin(toolkit, registry, platform)
        for category in plugin.drawer.categories():
            items = ", ".join(i.name for i in plugin.drawer.items(category))
            print(f"  [{platform}] {category}: {items}")
        print()

    plugin = MobiVinePlugin(toolkit, registry, "s60")
    item = plugin.drawer.find("Location", "addProximityAlert")
    dialog = plugin.open_configuration(item)

    print("== Configuration dialog (Figure 7b) ==")
    print("  Variables:")
    for field in dialog.variable_fields():
        print(f"    {field.name:20s} {field.type_name:45s} {field.description}")
    print("  Properties (S60-specific):")
    for field in dialog.property_fields():
        allowed = f" allowed={list(field.allowed_values)}" if field.allowed_values else ""
        print(f"    {field.name:20s} default={field.default!r}{allowed}")

    dialog.set_variable("radius", 500.0)
    dialog.set_variable("timer", -1)
    dialog.set_property("powerConsumption", "LOW")
    dialog.set_callback_target("this")

    print("\n== Source preview (S60 / Java) ==")
    print(dialog.preview())

    print("\n== Same proxy, other generators ==")
    descriptor = registry.descriptor("Location")
    for language in ("javascript", "python"):
        print(f"--- {language} ---")
        print(
            generator_for(language).generate(
                descriptor,
                "addProximityAlert",
                "webview" if language == "javascript" else "android",
                variables={"radius": 500.0},
                properties={"provider": "gps"},
            )
        )

    print("\n== Embedding + S60 single-jar packaging ==")
    project = toolkit.create_project("workforce-s60", "s60")
    project.add_file(
        CodeFile(
            "WorkForceManagement.java",
            "public void startApp() {\n    /*PROXY*/\n}\n",
        )
    )
    plugin.embed(
        project, dialog, file_name="WorkForceManagement.java", marker="/*PROXY*/"
    )
    print(f"  classpath after embed: {project.classpath}")
    suite = plugin.extension.build_suite(
        project, Jar("workforce.jar", [JarEntry("WorkForceManagement.class", 4096)])
    )
    print(f"  merged suite jar     : {[e.path for e in suite.jar.entries]}")
    print(f"  JAD permissions      : {suite.jad.permissions}")
    print("\n  deployed JAD:")
    for line in suite.jad.to_text().splitlines():
        print(f"    {line}")


if __name__ == "__main__":
    main()
