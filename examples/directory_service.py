#!/usr/bin/env python
"""Directory services — the paper's other motivating application class.

"Using the location information available on the mobile phone, one can
design a number of location-based applications — directory services,
workforce management solutions, etc."  (Section 1.)

A field engineer's directory app, written once against five proxies:

* **Location** — where am I?
* **Http** — ask the enterprise directory for sites near that position.
* **Contacts** — find the nearest site's on-call engineer in the address
  book.
* **Call** (with the retry enrichment) — ring them, riding out the first
  unreachable attempt.
* **Calendar** — book the site visit.

Run:  python examples/directory_service.py
"""

import json

from repro.apps.workforce import scenario
from repro.core.enrichment import CallRetryCoordinator, RetryPolicy
from repro.core.proxies import create_proxy
from repro.device.network import HttpResponse
from repro.device.telephony import TelephonyUnit
from repro.platforms.android.calendar_provider import READ_CALENDAR, WRITE_CALENDAR
from repro.platforms.android.contacts import READ_CONTACTS, WRITE_CONTACTS
from repro.util.geo import destination_point, haversine_m

DIRECTORY_HOST = "directory.example.com"

#: The enterprise's sites, placed around the scenario's base point.
SITES = [
    {"site": "north-substation", "bearing": 0.0, "distance_m": 1_500.0, "oncall": "Nina North"},
    {"site": "east-tower", "bearing": 90.0, "distance_m": 900.0, "oncall": "Ed East"},
    {"site": "south-depot", "bearing": 180.0, "distance_m": 4_000.0, "oncall": "Sam South"},
]


def build_world():
    sc = scenario.build_android()
    sc.platform.install(
        "directory",
        scenario.ANDROID_PERMISSIONS
        | {READ_CONTACTS, WRITE_CONTACTS, READ_CALENDAR, WRITE_CALENDAR},
    )
    # Populate the directory server.
    placed = []
    for entry in SITES:
        point = destination_point(
            scenario.SITE.latitude,
            scenario.SITE.longitude,
            entry["bearing"],
            entry["distance_m"],
        )
        placed.append(
            {
                "site": entry["site"],
                "latitude": point.latitude,
                "longitude": point.longitude,
                "oncall": entry["oncall"],
            }
        )

    def nearby(request):
        body = json.loads(request.body)
        ranked = sorted(
            placed,
            key=lambda s: haversine_m(
                body["latitude"], body["longitude"], s["latitude"], s["longitude"]
            ),
        )
        return HttpResponse(200, json.dumps(ranked[: body.get("limit", 3)]))

    sc.device.network.add_server(DIRECTORY_HOST).route("POST", "/nearby", nearby)
    # Populate the device address book (one engineer per site).
    for index, entry in enumerate(SITES):
        sc.device.contacts.add(entry["oncall"], (f"+9155577{index:02d}",))
    return sc


def main():
    sc = build_world()
    context = sc.platform.new_context("directory")

    location = create_proxy("Location", sc.platform)
    location.set_property("context", context)
    http = create_proxy("Http", sc.platform)
    http.set_property("context", context)
    contacts = create_proxy("Contacts", sc.platform)
    contacts.set_property("context", context)
    call = create_proxy("Call", sc.platform)
    call.set_property("context", context)
    calendar = create_proxy("Calendar", sc.platform)
    calendar.set_property("context", context)

    print("== 1. Where am I? (Location proxy) ==")
    position = location.get_location()
    print(f"  {position.latitude:.5f}, {position.longitude:.5f}")

    print("\n== 2. Nearby sites (Http proxy -> enterprise directory) ==")
    result = http.post(
        f"http://{DIRECTORY_HOST}/nearby",
        json.dumps(
            {"latitude": position.latitude, "longitude": position.longitude, "limit": 2}
        ),
    )
    nearby_sites = json.loads(result.body)
    for entry in nearby_sites:
        print(f"  {entry['site']:18s} on-call: {entry['oncall']}")
    nearest = nearby_sites[0]

    print("\n== 3. Find the on-call engineer (Contacts proxy) ==")
    matches = contacts.find_by_name(nearest["oncall"])
    engineer = matches[0]
    print(f"  {engineer.name} -> {engineer.primary_number}")

    print("\n== 4. Ring them (Call proxy + retry enrichment) ==")
    # First attempt fails: the engineer is in a dead zone, then resurfaces.
    sc.device.telephony.set_callee_behavior(
        engineer.primary_number, TelephonyUnit.UNREACHABLE
    )
    coordinator = CallRetryCoordinator(
        call, sc.platform.scheduler, RetryPolicy(max_attempts=3, retry_delay_ms=2_000.0)
    )
    report = coordinator.make_a_call(engineer.primary_number)
    sc.platform.run_for(1_000.0)
    sc.device.telephony.set_callee_behavior(
        engineer.primary_number, TelephonyUnit.ANSWER
    )
    sc.platform.run_for(20_000.0)
    print(f"  attempts: {report.attempts}, outcomes so far: "
          f"{[o.value for o in report.outcomes]} (second attempt answered)")

    print("\n== 5. Book the visit (Calendar proxy) ==")
    calendar.set_property("eventLocation", nearest["site"])
    now = sc.platform.clock.now_ms
    event_id = calendar.add_event(
        f"Visit {nearest['site']} with {engineer.name}", now + 3_600_000, now + 5_400_000
    )
    event = calendar.list_events()[0]
    print(f"  booked {event.summary!r} at {event.location} "
          f"({event.duration_ms / 60000:.0f} min), id={event_id}")


if __name__ == "__main__":
    main()
