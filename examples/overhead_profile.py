"""Trace analytics: the Figure-10 overhead profile, SLOs, and the gate.

Walks through (1) folding a traced Figure-10 run into the per-layer
middleware-vs-native decomposition, (2) flamegraph collapsed stacks and
the top-N self-time table, (3) declarative SLOs over a workforce fleet,
and (4) the perf-regression gate comparing two profiles.

Run with:  python examples/overhead_profile.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.workforce.fleet import build_fleet, launch_fleet
from repro.bench.harness import Fig10Runner
from repro.obs import (
    OverheadProfile,
    SloSpec,
    collapsed_stacks,
    diff_profiles,
    parse_jsonl,
    render_profile_text,
    top_spans_text,
)


def figure_10_from_traces():
    """Fold a traced benchmark run into the per-layer decomposition."""
    print("=" * 72)
    print("1. The Figure-10 decomposition, derived from traces")
    print("=" * 72)

    trace = Fig10Runner().trace(repetitions=3)
    records = parse_jsonl(trace)
    profile = OverheadProfile.from_records(records)
    print()
    print(render_profile_text(profile))
    print()
    print("Same trace as flamegraph collapsed stacks (first five):")
    for line in collapsed_stacks(records).splitlines()[:5]:
        print(f"  {line}")
    print()
    print(top_spans_text(records, 5))
    return records, profile


def fleet_slos():
    """Declare SLOs over a three-agent fleet and evaluate them."""
    print()
    print("=" * 72)
    print("2. SLOs over the workforce fleet")
    print("=" * 72)

    fleet = build_fleet(3, observability=True)
    launch_fleet(fleet)
    fleet.install_slos(
        [
            SloSpec("sendTextMessage", 200.0, target_ratio=0.9, window_ms=300_000.0),
            SloSpec("post", 500.0, window_ms=300_000.0),
        ]
    )
    fleet.run_for(180_000.0)
    statuses = fleet.evaluate_slos()
    print()
    for agent_id, agent_statuses in statuses.items():
        for status in agent_statuses:
            verdict = "BREACHED" if status.breached else "ok"
            print(
                f"  {agent_id} {status.spec.name}: {verdict} "
                f"attainment={status.attainment:.3f} n={status.window_count}"
            )
    print(f"\n  agents in breach: {fleet.breached_slos() or 'none'}")


def regression_gate(records, baseline):
    """Compare a slowed-down run against the baseline profile."""
    print()
    print("=" * 72)
    print("3. The perf-regression gate")
    print("=" * 72)

    # Simulate a regression: inflate every substrate span by 20%.
    slowed = []
    for record in records:
        record = dict(record)
        if record["name"].startswith("substrate:") and record["end_virtual_ms"]:
            span_ms = record["end_virtual_ms"] - record["start_virtual_ms"]
            record["end_virtual_ms"] = record["start_virtual_ms"] + span_ms * 1.2
        slowed.append(record)
    diff = diff_profiles(baseline, OverheadProfile.from_records(slowed))
    print()
    print(diff.render_text())
    print(f"\n  gate verdict: {'pass' if diff.passed else 'FAIL'}")


def main():
    records, profile = figure_10_from_traces()
    fleet_slos()
    regression_gate(records, profile)


if __name__ == "__main__":
    main()
